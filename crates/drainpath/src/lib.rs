//! Offline drain-path algorithm (paper §III-B).
//!
//! Given any topology satisfying the paper's baseline assumptions
//! (connected, bidirectional links, all turns including U-turns possible),
//! DRAIN needs a *drain path*: a single cycle in the channel-dependency
//! graph that covers **every unidirectional link exactly once**. During each
//! drain window, every packet sitting in an escape VC is forced one hop
//! along this path.
//!
//! Such a cycle is precisely an **Eulerian circuit** of the topology viewed
//! as a symmetric digraph: every bidirectional link contributes one incoming
//! and one outgoing unidirectional link at each endpoint, so in-degree
//! equals out-degree everywhere, and the graph is connected — an Eulerian
//! circuit therefore always exists. (The paper argues existence via a
//! spanning tree plus U-turns; the Eulerian view subsumes that argument and
//! covers *all* links, not just tree links.)
//!
//! Two constructions are implemented:
//!
//! * [`euler`] — Hierholzer's algorithm, O(E), the default.
//! * [`hawick`] — the paper's cited Hawick–James recursive tree search over
//!   the dependency graph, augmented (a) to terminate as soon as one
//!   covering cycle is found and (b) with Fleury's bridge-avoidance rule as
//!   successor ordering so the search completes without exponential
//!   backtracking. A bounded full circuit enumerator is also provided for
//!   fidelity tests on small graphs.
//!
//! The result is wrapped in a [`DrainPath`], which also carries the
//! [`TurnTable`] each router consults while draining (paper Fig 7; the
//! drain windows themselves are §III-C, implemented in `drain-core`).
//!
//! # Examples
//!
//! ```
//! use drain_topology::Topology;
//! use drain_path::DrainPath;
//!
//! let topo = Topology::mesh(4, 4);
//! let path = DrainPath::compute(&topo)?;
//! assert_eq!(path.len(), topo.num_unidirectional_links());
//! path.verify(&topo)?;
//! # Ok::<(), drain_path::DrainPathError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod euler;
pub mod hawick;
mod turntable;

use std::fmt;

use drain_topology::{depgraph::DependencyGraph, LinkId, Topology};

pub use turntable::TurnTable;

/// Errors from drain-path construction or verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DrainPathError {
    /// The topology is disconnected, so no covering cycle exists.
    Disconnected,
    /// The topology has no links at all (single node).
    NoLinks,
    /// A claimed path failed verification.
    Invalid(&'static str),
    /// The bounded search gave up before finding a covering cycle.
    SearchExhausted,
}

impl fmt::Display for DrainPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainPathError::Disconnected => write!(f, "topology is disconnected"),
            DrainPathError::NoLinks => write!(f, "topology has no links"),
            DrainPathError::Invalid(why) => write!(f, "invalid drain path: {why}"),
            DrainPathError::SearchExhausted => {
                write!(f, "search budget exhausted before a covering cycle was found")
            }
        }
    }
}

impl std::error::Error for DrainPathError {}

/// Which offline construction to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Algorithm {
    /// Hierholzer's Eulerian-circuit algorithm (linear; the default).
    #[default]
    Hierholzer,
    /// The paper's Hawick–James-style recursive search with early
    /// termination.
    HawickJames,
}

/// A drain path: a cyclic sequence of unidirectional links covering every
/// link of the topology exactly once, plus the per-router [`TurnTable`]
/// derived from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrainPath {
    circuit: Vec<LinkId>,
    turn_table: TurnTable,
    /// `position[link] = index` of the link within the circuit.
    position: Vec<u32>,
}

impl DrainPath {
    /// Computes the drain path for `topo` with the default (Hierholzer)
    /// algorithm.
    ///
    /// # Errors
    ///
    /// [`DrainPathError::Disconnected`] if the topology is not connected;
    /// [`DrainPathError::NoLinks`] for a single-node network.
    pub fn compute(topo: &Topology) -> Result<Self, DrainPathError> {
        Self::compute_with(topo, Algorithm::Hierholzer)
    }

    /// Computes the drain path with an explicit algorithm choice.
    ///
    /// # Errors
    ///
    /// As for [`DrainPath::compute`]; additionally the Hawick–James search
    /// may report [`DrainPathError::SearchExhausted`] on pathological inputs
    /// (never observed for connected bidirectional topologies).
    pub fn compute_with(topo: &Topology, algorithm: Algorithm) -> Result<Self, DrainPathError> {
        if topo.num_unidirectional_links() == 0 {
            return Err(DrainPathError::NoLinks);
        }
        if !topo.is_connected() {
            return Err(DrainPathError::Disconnected);
        }
        let circuit = match algorithm {
            Algorithm::Hierholzer => euler::hierholzer_circuit(topo)?,
            Algorithm::HawickJames => hawick::find_covering_cycle(topo)?,
        };
        Self::from_circuit(topo, circuit)
    }

    /// Wraps an externally produced circuit, verifying it first.
    ///
    /// # Errors
    ///
    /// [`DrainPathError::Invalid`] if the circuit is not a covering cycle of
    /// `topo`.
    pub fn from_circuit(topo: &Topology, circuit: Vec<LinkId>) -> Result<Self, DrainPathError> {
        verify_circuit(topo, &circuit)?;
        let mut position = vec![u32::MAX; topo.num_unidirectional_links()];
        for (i, &l) in circuit.iter().enumerate() {
            position[l.index()] = i as u32;
        }
        let turn_table = TurnTable::from_circuit(topo, &circuit);
        Ok(DrainPath {
            circuit,
            turn_table,
            position,
        })
    }

    /// The covering cycle as a link sequence. `circuit()[i+1]` is the link a
    /// drained packet on `circuit()[i]`'s escape VC is forced onto.
    pub fn circuit(&self) -> &[LinkId] {
        &self.circuit
    }

    /// Number of links in the cycle (equals the number of unidirectional
    /// links of the topology).
    pub fn len(&self) -> usize {
        self.circuit.len()
    }

    /// A drain path is never empty (construction fails on linkless
    /// topologies), but this is provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.circuit.is_empty()
    }

    /// The per-router turn-table (paper Fig 7): where each input link's
    /// escape VC is forced to turn during a drain.
    pub fn turn_table(&self) -> &TurnTable {
        &self.turn_table
    }

    /// The link following `l` on the drain path.
    pub fn next_link(&self, l: LinkId) -> LinkId {
        self.turn_table.next(l)
    }

    /// Index of link `l` within the circuit.
    pub fn position(&self, l: LinkId) -> usize {
        self.position[l.index()] as usize
    }

    /// Test-only fault seeding: corrupts the turn-table entry for `from`
    /// (see [`TurnTable::corrupt_entry_for_tests`]), leaving the circuit
    /// untouched. Used by the fuzz harness's `--seed-fault` mode to prove
    /// the runtime invariant checker catches a broken drain table.
    pub fn corrupt_turn_for_tests(&mut self, from: LinkId, to: LinkId) {
        self.turn_table.corrupt_entry_for_tests(from, to);
    }

    /// Re-verifies this path against a topology.
    ///
    /// # Errors
    ///
    /// [`DrainPathError::Invalid`] describing the first violated property.
    pub fn verify(&self, topo: &Topology) -> Result<(), DrainPathError> {
        verify_circuit(topo, &self.circuit)
    }
}

/// Checks that `circuit` is an elementary cycle in the dependency graph of
/// `topo` covering every unidirectional link exactly once.
fn verify_circuit(topo: &Topology, circuit: &[LinkId]) -> Result<(), DrainPathError> {
    let m = topo.num_unidirectional_links();
    if circuit.len() != m {
        return Err(DrainPathError::Invalid(
            "circuit length differs from the number of unidirectional links",
        ));
    }
    let mut seen = vec![false; m];
    for &l in circuit {
        if l.index() >= m {
            return Err(DrainPathError::Invalid("link id out of range"));
        }
        if seen[l.index()] {
            return Err(DrainPathError::Invalid("link visited more than once"));
        }
        seen[l.index()] = true;
    }
    // All covered follows from len == m plus uniqueness.
    let dep = DependencyGraph::new(topo);
    if !dep.is_closed_walk(circuit) {
        return Err(DrainPathError::Invalid(
            "consecutive links are not joined by a turn",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drain_topology::faults::FaultInjector;
    use drain_topology::NodeId;

    #[test]
    fn mesh_paths_verify_for_both_algorithms() {
        for algo in [Algorithm::Hierholzer, Algorithm::HawickJames] {
            let topo = Topology::mesh(4, 4);
            let p = DrainPath::compute_with(&topo, algo).unwrap();
            assert_eq!(p.len(), topo.num_unidirectional_links());
            p.verify(&topo).unwrap();
        }
    }

    #[test]
    fn faulty_mesh_paths_verify() {
        for faults in [1, 4, 8, 12] {
            for seed in 0..3 {
                let topo = FaultInjector::new(seed)
                    .remove_links(&Topology::mesh(8, 8), faults)
                    .unwrap();
                let p = DrainPath::compute(&topo).unwrap();
                p.verify(&topo).unwrap();
            }
        }
    }

    #[test]
    fn irregular_and_random_topologies() {
        let t = drain_topology::chiplet::demo_heterogeneous_system(1);
        DrainPath::compute(&t).unwrap().verify(&t).unwrap();
        let r = drain_topology::chiplet::random_connected(24, 3.0, 7);
        DrainPath::compute(&r).unwrap().verify(&r).unwrap();
    }

    #[test]
    fn two_node_network_uses_u_turns() {
        let t = Topology::from_edges("pair", 2, &[(0, 1)]).unwrap();
        let p = DrainPath::compute(&t).unwrap();
        assert_eq!(p.len(), 2);
        // The only covering cycle is l -> reverse(l) -> l, a double U-turn.
        assert_eq!(p.circuit()[1], p.circuit()[0].reverse());
    }

    #[test]
    fn disconnected_rejected() {
        let t = Topology::from_edges("dis", 4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(DrainPath::compute(&t), Err(DrainPathError::Disconnected));
    }

    #[test]
    fn single_node_rejected() {
        let t = Topology::from_edges("one", 1, &[]).unwrap();
        assert_eq!(DrainPath::compute(&t), Err(DrainPathError::NoLinks));
    }

    #[test]
    fn from_circuit_rejects_bad_paths() {
        let t = Topology::ring(4);
        let p = DrainPath::compute(&t).unwrap();
        let mut truncated = p.circuit().to_vec();
        truncated.pop();
        assert!(matches!(
            DrainPath::from_circuit(&t, truncated),
            Err(DrainPathError::Invalid(_))
        ));
        let mut dup = p.circuit().to_vec();
        let last = dup.len() - 1;
        dup[last] = dup[0];
        assert!(matches!(
            DrainPath::from_circuit(&t, dup),
            Err(DrainPathError::Invalid(_))
        ));
    }

    #[test]
    fn next_link_walks_whole_circuit() {
        let topo = FaultInjector::new(5)
            .remove_links(&Topology::mesh(5, 5), 4)
            .unwrap();
        let p = DrainPath::compute(&topo).unwrap();
        let start = p.circuit()[0];
        let mut cur = start;
        for _ in 0..p.len() {
            cur = p.next_link(cur);
        }
        assert_eq!(cur, start, "next_link must traverse the full cycle");
    }

    #[test]
    fn position_is_inverse_of_circuit() {
        let topo = Topology::mesh(3, 3);
        let p = DrainPath::compute(&topo).unwrap();
        for (i, &l) in p.circuit().iter().enumerate() {
            assert_eq!(p.position(l), i);
        }
    }

    #[test]
    fn both_algorithms_cover_fig8_topology() {
        let topo = drain_topology::chiplet::fig8_topology();
        for algo in [Algorithm::Hierholzer, Algorithm::HawickJames] {
            let p = DrainPath::compute_with(&topo, algo).unwrap();
            p.verify(&topo).unwrap();
            // The path visits every router.
            let mut visited = vec![false; topo.num_nodes()];
            for &l in p.circuit() {
                visited[topo.link(l).src.index()] = true;
            }
            assert!(visited.iter().all(|&v| v));
        }
    }

    #[test]
    fn recompute_after_fault() {
        let t0 = Topology::mesh(4, 4);
        let p0 = DrainPath::compute(&t0).unwrap();
        let l = t0.link_between(NodeId(5), NodeId(6)).unwrap();
        let t1 = t0.without_link(l).unwrap();
        // Old path no longer verifies (wrong length), new one does.
        assert!(p0.verify(&t1).is_err());
        let p1 = DrainPath::compute(&t1).unwrap();
        p1.verify(&t1).unwrap();
        assert_eq!(p1.len(), p0.len() - 2);
    }
}
