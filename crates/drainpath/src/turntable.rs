//! Per-router drain turn-tables (paper Fig 7).
//!
//! During a drain window the router does not consult the routing function:
//! each input port's escape VC is forced onto the output port given by the
//! turn-table. Because the drain path visits every unidirectional link
//! exactly once, the map *input link → next link* is a permutation of all
//! links, so simultaneously shifting every escape-VC packet one hop is
//! conflict-free.

use drain_topology::{LinkId, NodeId, Topology};

/// The global drain turn-table: for every unidirectional link, the link a
/// drained packet is forced onto next.
///
/// # Examples
///
/// ```
/// use drain_topology::Topology;
/// use drain_path::DrainPath;
///
/// let topo = Topology::mesh(3, 3);
/// let path = DrainPath::compute(&topo)?;
/// let tt = path.turn_table();
/// for l in topo.link_ids() {
///     // The forced turn pivots at the link's destination router.
///     assert_eq!(topo.link(l).dst, topo.link(tt.next(l)).src);
/// }
/// # Ok::<(), drain_path::DrainPathError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TurnTable {
    /// `next[l]` = successor link of `l` on the drain path.
    next: Vec<LinkId>,
}

impl TurnTable {
    /// Builds the table from a covering circuit (already verified by the
    /// caller).
    pub(crate) fn from_circuit(topo: &Topology, circuit: &[LinkId]) -> Self {
        let mut next = vec![LinkId(u32::MAX); topo.num_unidirectional_links()];
        for i in 0..circuit.len() {
            let from = circuit[i];
            let to = circuit[(i + 1) % circuit.len()];
            next[from.index()] = to;
        }
        debug_assert!(next.iter().all(|l| l.0 != u32::MAX));
        TurnTable { next }
    }

    /// Successor of link `l` on the drain path.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range for the topology the table was built
    /// from.
    #[inline]
    pub fn next(&self, l: LinkId) -> LinkId {
        self.next[l.index()]
    }

    /// Number of links covered.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Turn tables are never empty for valid drain paths.
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// The entries of router `r`'s local table: `(input link, output link)`
    /// pairs for every link arriving at `r`, as the hardware table in the
    /// paper's Fig 7 would store them.
    pub fn router_entries(&self, topo: &Topology, r: NodeId) -> Vec<(LinkId, LinkId)> {
        topo.in_links(r)
            .iter()
            .map(|&l| (l, self.next(l)))
            .collect()
    }

    /// Test-only fault seeding: overwrites `from`'s successor with `to`,
    /// deliberately breaking the permutation/pivot properties so the
    /// runtime invariant checker's detection path can be exercised
    /// end-to-end (the fuzz harness's `--seed-fault` mode). Never call
    /// this outside fault-injection tests.
    pub fn corrupt_entry_for_tests(&mut self, from: LinkId, to: LinkId) {
        self.next[from.index()] = to;
    }

    /// Validates the permutation property: every link appears exactly once
    /// as a successor.
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.next.len()];
        for &l in &self.next {
            if l.index() >= seen.len() || seen[l.index()] {
                return false;
            }
            seen[l.index()] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DrainPath;
    use drain_topology::faults::FaultInjector;

    #[test]
    fn table_is_permutation() {
        let topo = FaultInjector::new(8)
            .remove_links(&Topology::mesh(6, 6), 6)
            .unwrap();
        let p = DrainPath::compute(&topo).unwrap();
        assert!(p.turn_table().is_permutation());
        assert_eq!(p.turn_table().len(), topo.num_unidirectional_links());
    }

    #[test]
    fn entries_pivot_at_router() {
        let topo = Topology::mesh(4, 4);
        let p = DrainPath::compute(&topo).unwrap();
        for r in topo.nodes() {
            let entries = p.turn_table().router_entries(&topo, r);
            assert_eq!(entries.len(), topo.in_links(r).len());
            for (inl, outl) in entries {
                assert_eq!(topo.link(inl).dst, r);
                assert_eq!(topo.link(outl).src, r);
            }
        }
    }

    #[test]
    fn every_router_covered_by_some_entry() {
        let topo = drain_topology::chiplet::demo_heterogeneous_system(2);
        let p = DrainPath::compute(&topo).unwrap();
        for r in topo.nodes() {
            assert!(
                !p.turn_table().router_entries(&topo, r).is_empty(),
                "router {r:?} has no drain turn entries"
            );
        }
    }
}
