//! Heterogeneous chiplet system demo (paper §VI): independently designed
//! networks — two meshes and a ring accelerator — joined by an interposer.
//! Composing individually deadlock-free networks is not deadlock-free, but
//! DRAIN's offline algorithm covers the composed irregular topology with
//! one drain path and guarantees deadlock freedom for the whole package.
//!
//! Run with: `cargo run --release --example chiplet`

use drain_repro::prelude::*;
use drain_repro::topology::chiplet::{compose, Chiplet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three vendor chiplets with their own topologies.
    let cpu = Chiplet::new(Topology::mesh(4, 4), vec![3, 12]);
    let gpu = Chiplet::new(Topology::mesh(3, 3), vec![0, 8]);
    let accel = Chiplet::new(Topology::ring(6), vec![0, 3]);
    let system = compose("chiplet-system", &[cpu, gpu, accel])?;
    println!(
        "composed system: {} nodes, {} links, connected: {}",
        system.num_nodes(),
        system.num_bidirectional_links(),
        system.is_connected()
    );

    // One drain path covers the whole package, interposer links included.
    let path = DrainPath::compute(&system)?;
    println!("drain path covers all {} unidirectional links", path.len());
    let mut covered = vec![false; system.num_nodes()];
    for &l in path.circuit() {
        covered[system.link(l).src.index()] = true;
    }
    assert!(covered.iter().all(|&c| c), "every router drained");

    // Cross-chiplet traffic under DRAIN.
    let mut sim = DrainNetworkBuilder::new(system)
        .epoch(16_384)
        .pattern(SyntheticPattern::UniformRandom)
        .injection_rate(0.03)
        .seed(5)
        .build()?;
    sim.run(60_000);
    let s = sim.stats();
    println!("\nafter 60K cycles of cross-chiplet uniform traffic:");
    println!("  delivered: {}  mean latency: {:.1}  drains: {}", s.ejected, s.net_latency.mean(), s.drains);
    assert!(s.ejected > 1_000);
    println!("\nArbitrary vendor topologies compose deadlock-free under DRAIN —");
    println!("no inter-chiplet turn restrictions required (paper §VI).");
    Ok(())
}
