//! Protocol-level deadlock demo (paper Fig 2): a MESI system whose three
//! message classes share ONE virtual network deadlocks under load; the
//! same system protected by DRAIN keeps running — no virtual networks
//! needed.
//!
//! Run with: `cargo run --release --example coherence_deadlock`

use drain_repro::prelude::*;

fn build(topo: &Topology, protected: bool, seed: u64) -> Sim {
    let engine = CoherenceEngine::new(
        topo,
        CoherenceConfig::default(),
        Box::new(SyntheticMemTrace::uniform(0.05, 0.4, 256, seed)),
    );
    let config = SimConfig {
        vns: 1, // all three classes share one virtual network!
        vcs_per_vn: 2,
        num_classes: 3,
        inj_queue_capacity: topo.num_nodes() + 8,
        escape_sticky: true,
        watchdog_threshold: 30_000,
        seed,
        ..SimConfig::default()
    };
    let mechanism: Box<dyn drain_repro::netsim::mechanism::Mechanism> = if protected {
        let path = DrainPath::compute(topo).expect("connected");
        Box::new(DrainMechanism::new(
            path,
            DrainConfig {
                epoch: 8_192,
                ..DrainConfig::default()
            },
        ))
    } else {
        Box::new(drain_repro::netsim::mechanism::NoMechanism)
    };
    Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::new(topo)),
        mechanism,
        Box::new(engine),
    )
}

fn main() {
    let topo = Topology::mesh(4, 4);
    println!("16-core MESI system, three message classes on ONE virtual network\n");

    let mut unprotected = build(&topo, false, 2);
    unprotected.run(150_000);
    println!("unprotected (no deadlock mechanism):");
    println!("  packets delivered: {}", unprotected.stats().ejected);
    println!(
        "  wedged by a protocol-level deadlock: {}",
        unprotected.stats().watchdog_deadlock
    );

    let mut drained = build(&topo, true, 2);
    drained.run(150_000);
    println!("\nDRAIN (8K-cycle epochs, same single virtual network):");
    println!("  packets delivered: {}", drained.stats().ejected);
    println!("  drain windows:     {}", drained.stats().drains);
    println!(
        "  wedged:            {}",
        drained.stats().watchdog_deadlock
    );
    assert!(
        drained.stats().ejected > unprotected.stats().ejected,
        "DRAIN must outlive the unprotected network"
    );
    println!("\nDRAIN removes protocol-level deadlocks without per-class virtual networks —");
    println!("the buffer savings behind the paper's 77% router-power reduction (Fig 9).");
}
