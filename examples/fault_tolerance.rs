//! Wear-out lifetime demo (paper §II-D): links fail one by one over the
//! chip's life; after each failure the offline algorithm recomputes the
//! drain path and service continues on the degraded, irregular topology —
//! no turn-restriction redesign, no topology assumptions.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use drain_repro::drain::reconfigure::FaultTolerantNetwork;
use drain_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::mesh(6, 6);
    let mut net = FaultTolerantNetwork::new(
        topo,
        SimConfig {
            num_classes: 1,
            ..SimConfig::drain_default()
        },
        DrainConfig {
            epoch: 4_096,
            full_drain_period: 16,
            ..DrainConfig::default()
        },
        SyntheticPattern::UniformRandom,
        0.04,
        9,
    )?;

    println!("6x6 mesh entering service; links will wear out one by one\n");
    for event in 0..6 {
        net.serve(20_000);
        let delivered = net.delivered();
        println!(
            "service period {event}: topology {} links, {} packets delivered so far",
            net.topology().num_bidirectional_links(),
            delivered
        );
        if let Some(link) = FaultInjector::new(1234).pick_removable_link(net.topology(), event) {
            let e = net.topology().link(link);
            let flushed = net.fault_link(link)?;
            println!(
                "  !! link {}-{} failed; flushed in {} cycles, drain path recomputed",
                e.src, e.dst, flushed
            );
        }
    }
    net.serve(20_000);
    let rec = net.record();
    println!("\nlifetime summary:");
    println!("  faults survived          : {}", rec.faults_survived);
    println!("  total packets delivered  : {}", net.delivered());
    println!("  reconfiguration overhead : {} cycles", rec.reconfiguration_cycles);
    assert_eq!(rec.faults_survived, 6);
    assert!(net.topology().is_connected());
    Ok(())
}
