//! Quickstart: bring up a DRAIN-protected network on a faulty mesh and
//! watch it deliver traffic that would deadlock an unprotected network.
//!
//! Run with: `cargo run --release --example quickstart`

use drain_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-node mesh that has lost 8 links to wear-out faults, as in the
    // paper's irregular-topology evaluation.
    let topo = FaultInjector::new(42).remove_links(&Topology::mesh(8, 8), 8)?;
    println!(
        "topology: {} ({} nodes, {} bidirectional links, connected: {})",
        topo.name(),
        topo.num_nodes(),
        topo.num_bidirectional_links(),
        topo.is_connected()
    );

    // The offline algorithm: one cycle covering every unidirectional link.
    let path = DrainPath::compute(&topo)?;
    println!(
        "drain path: {} links covered exactly once (verified: {:?})",
        path.len(),
        path.verify(&topo).is_ok()
    );

    // A DRAIN-protected simulation: fully adaptive routing (not
    // deadlock-free by itself!), one virtual network with two VCs, and the
    // paper's 64K-cycle drain epoch.
    let mut sim = DrainNetworkBuilder::new(topo)
        .epoch(65_536)
        .pattern(SyntheticPattern::UniformRandom)
        .injection_rate(0.05)
        .seed(7)
        .build()?;
    sim.run(50_000);

    let s = sim.stats();
    println!("\nafter 50K cycles at 5% uniform-random injection:");
    println!("  packets delivered : {}", s.ejected);
    println!("  mean latency      : {:.1} cycles", s.net_latency.mean());
    println!("  p99 latency       : {} cycles", s.net_latency.p99());
    println!("  avg hops          : {:.2}", s.avg_hops());
    println!("  drain windows     : {}", s.drains);
    println!("  drained hops      : {}", s.forced_hops);
    println!(
        "  misroutes/packet  : {:.4}",
        s.misroutes as f64 / s.ejected.max(1) as f64
    );
    assert!(s.ejected > 0);
    Ok(())
}
