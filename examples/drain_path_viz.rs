//! Drain-path visualization (paper Fig 6): prints the covering cycle and
//! per-router turn-tables for a regular and an irregular topology.
//!
//! Run with: `cargo run --release --example drain_path_viz`

use drain_repro::prelude::*;

fn show(topo: &Topology, title: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n=== {title} ===");
    println!(
        "{} nodes, {} bidirectional links",
        topo.num_nodes(),
        topo.num_bidirectional_links()
    );
    // Compute with both offline algorithms and cross-check coverage.
    let hier = DrainPath::compute_with(topo, Algorithm::Hierholzer)?;
    let hj = DrainPath::compute_with(topo, Algorithm::HawickJames)?;
    assert_eq!(hier.len(), hj.len());
    println!("drain path ({} links):", hier.len());
    let mut line = String::new();
    for (i, &l) in hier.circuit().iter().enumerate() {
        let e = topo.link(l);
        line.push_str(&format!("{}->{} ", e.src, e.dst));
        if (i + 1) % 10 == 0 {
            println!("  {line}");
            line.clear();
        }
    }
    if !line.is_empty() {
        println!("  {line}");
    }
    println!("\nper-router turn-tables (input link -> forced output link):");
    for r in topo.nodes().take(4) {
        let entries: Vec<String> = hier
            .turn_table()
            .router_entries(topo, r)
            .into_iter()
            .map(|(i, o)| {
                let ie = topo.link(i);
                let oe = topo.link(o);
                format!("[{}->{}]=>[{}->{}]", ie.src, ie.dst, oe.src, oe.dst)
            })
            .collect();
        println!("  router {r}: {}", entries.join("  "));
    }
    println!("  ... ({} routers total)", topo.num_nodes());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    show(&Topology::mesh(4, 4), "Regular 4x4 mesh")?;
    let irregular = FaultInjector::new(66).remove_links(&Topology::mesh(4, 4), 3)?;
    show(&irregular, "Irregular 4x4 mesh (3 faulty links)")?;
    let random = drain_repro::topology::chiplet::random_connected(12, 3.0, 8);
    show(&random, "Random topology (12 nodes)")?;
    Ok(())
}
