//! Offline vendored stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` inner attribute, range and tuple
//! strategies, [`any`], [`Strategy::prop_map`], [`prop_oneof!`], and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed (derived from the test's module path and name), so
//! failures reproduce across runs. There is **no shrinking**: a failing
//! case reports the case number and message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; honour PROPTEST_CASES like the real
        // crate so CI can dial effort up or down.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A failed test case (returned by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Creates the RNG for one test, seeded from its name.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternative strategies of one value type
/// (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Full-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u32..100, y in any::<u64>()) {
///         prop_assert!(u64::from(x) + 1 <= 101);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e,
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..=6, y in 0usize..10, z in 0.25f64..0.75) {
            prop_assert!((3..=6).contains(&x));
            prop_assert!(y < 10);
            prop_assert!((0.25..0.75).contains(&z), "z={z}");
        }

        #[test]
        fn tuples_and_map_compose(p in (1u32..5, 1u32..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&p));
        }

        #[test]
        fn oneof_picks_every_arm(v in prop_oneof![0u32..1, 10u32..11]) {
            prop_assert!(v == 0 || v == 10);
        }

        #[test]
        fn any_u64_varies(s in any::<u64>()) {
            // Not a real property — just exercise the strategy.
            prop_assert_eq!(s, s);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use rand::RngCore;
        let mut a = crate::TestRng::deterministic("x::y");
        let mut b = crate::TestRng::deterministic("x::y");
        let mut c = crate::TestRng::deterministic("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn failing_case_reports_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "intentional");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "msg={msg}");
        assert!(msg.contains("intentional"), "msg={msg}");
    }
}
