//! Offline vendored stand-in for the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate.
//!
//! Implements [`ChaCha8Rng`]: a genuine ChaCha stream cipher reduced to
//! 8 rounds (Bernstein's ChaCha with the standard quarter-round), driven
//! as a random number generator through the vendored `rand` traits. The
//! exact output stream is *not* guaranteed to be bit-identical to the
//! upstream crate (block ordering details differ); it is guaranteed to be
//! deterministic per seed, `Clone`-able, `Send`, and statistically sound,
//! which is what the DRAIN reproduction's simulations rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha with 8 rounds, exposed as a seedable RNG.
///
/// `PartialEq` compares the exact stream position (key, counter, block,
/// read index): two generators compare equal iff they will produce the
/// same output forever. The sharded simulation kernel uses this to assert
/// that every shard's census replay consumed the identical draw schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and nonce words 14..16 of the ChaCha state; the
    /// 64-bit block counter lives in words 12..14.
    key: [u32; 8],
    counter: u64,
    /// Current keystream block.
    block: [u32; BLOCK_WORDS],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; BLOCK_WORDS] = [
            // "expand 32-byte k"
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = s;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (w, i) in s.iter_mut().zip(input) {
            *w = w.wrapping_add(i);
        }
        self.block = s;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..23 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn words_are_roughly_uniform() {
        // Mean of 100k unit-interval draws should sit near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((0.495..0.505).contains(&mean), "mean={mean}");
    }

    #[test]
    fn counter_crosses_block_boundaries() {
        // 16 words per block; pulling 40 words must span 3 blocks and stay
        // consistent with a fresh generator pulling the same count.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let second: Vec<u32> = (0..40).map(|_| b.next_u32()).collect();
        assert_eq!(first, second);
    }
}
