//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-compatible subset).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses:
//!
//! * [`RngCore`] — the raw generator interface (`next_u32`/`next_u64`/
//!   `fill_bytes`);
//! * [`SeedableRng`] — seeding, including the `seed_from_u64` PCG-style
//!   seed expansion matching `rand_core` 0.6 so seeds stay meaningful;
//! * [`Rng`] — the ergonomic extension trait (`gen`, `gen_range`,
//!   `gen_bool`);
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Determinism is the only hard requirement for the DRAIN reproduction:
//! every simulator RNG is seeded explicitly, and all results in this
//! repository are defined relative to this implementation. No
//! cryptographic claims are made.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod seq;

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material (e.g. `[u8; 32]` for ChaCha).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from exact seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the same PCG32 expansion used
    /// by `rand_core` 0.6, so `seed_from_u64(s)` produces the same
    /// generator the real crate would.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sample {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A type that can be drawn uniformly from the "standard" distribution:
    /// `u32`/`u64` over their full range, `f64`/`f32` in `[0, 1)`,
    /// `bool` fair.
    pub trait Standard: Sized {
        /// Draws one value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl Standard for u64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl Standard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform bits into [0, 1), as in rand's Standard for f64.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Standard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
    impl Standard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    /// A type with a uniform sampler over half-open/closed intervals.
    ///
    /// Mirrors upstream `rand::distributions::uniform::SampleUniform` so
    /// that [`SampleRange`] can be a *blanket* impl over `Range<T>` /
    /// `RangeInclusive<T>` — which is what lets integer-literal ranges
    /// (`rng.gen_range(0..256)`) infer their type from surrounding
    /// arithmetic exactly like the real crate.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
        fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
            -> Self;
    }

    macro_rules! impl_uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self, hi: Self, inclusive: bool, rng: &mut R,
                ) -> Self {
                    // Modulo bias over a 64-bit draw is ≤ 2^-40 for every
                    // span this workspace uses; Lemire mapping is overkill.
                    let span = (hi as u64) - (lo as u64) + inclusive as u64;
                    if span == 0 {
                        // Inclusive full u64 domain wrapped to 0.
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self, hi: Self, inclusive: bool, rng: &mut R,
                ) -> Self {
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64 + inclusive as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    impl_uniform_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: Self, hi: Self, _inclusive: bool, rng: &mut R,
                ) -> Self {
                    let u = <$t>::sample_standard(rng);
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    impl_uniform_float!(f32, f64);

    /// A range that can be sampled uniformly (`gen_range` argument).
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        ///
        /// # Panics
        ///
        /// Panics when the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            T::sample_between(lo, hi, true, rng)
        }
    }
}

pub use sample::{SampleRange, SampleUniform, Standard};

/// Ergonomic random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`
    /// (`u32`/`u64` full-range, `f64`/`f32` in `[0, 1)`, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny deterministic generator for the tests below.
    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SplitMix(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SplitMix(3);
        for _ in 0..10_000 {
            let a = rng.gen_range(5u16..9);
            assert!((5..9).contains(&a));
            let b = rng.gen_range(2usize..=2);
            assert_eq!(b, 2);
            let c = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&c));
            let d = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SplitMix(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix(13);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "frac={frac}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix(1);
        let _ = rng.gen_range(4u32..4);
    }
}
