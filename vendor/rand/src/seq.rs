//! Sequence-related randomness: shuffling and choosing from slices.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, identical order of draws
    /// to `rand` 0.8: iterate `i` from `len-1` down to `1`, swap with
    /// `gen_range(0..=i)`).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = Counter(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [7u8, 8, 9];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}
