//! Offline vendored stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Implements the subset the `drain-bench` benchmarks use — benchmark
//! groups, [`BenchmarkId`], [`Throughput`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`] / [`Bencher::iter_batched`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros — with plain
//! wall-clock timing: per benchmark it warms up, runs `sample_size`
//! samples, and prints min/median/mean nanoseconds per iteration (plus
//! elements/second when a throughput was declared).
//!
//! Two upstream conveniences are mirrored because the repo's tooling
//! relies on them:
//!
//! * `--test` on the command line (`cargo bench -- --test`) runs every
//!   benchmark exactly once, untimed — a smoke mode for CI;
//! * each timed benchmark writes
//!   `target/criterion/<id…>/new/estimates.json` with `min` / `median` /
//!   `mean` point estimates in nanoseconds (the upstream layout, reduced
//!   to the fields `scripts/bench_kernel.sh` consumes).
//!
//! There is no statistical regression machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Reads the subset of upstream CLI flags the harness honours
    /// (`--test`; everything else is ignored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 100,
            throughput: None,
            test_mode,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 100, None, self.test_mode, f);
        self
    }

    /// Compatibility no-op (upstream prints the final summary here).
    pub fn final_summary(&mut self) {}
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. simulated cycles) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How [`Bencher::iter_batched`] amortises setup (upstream tunes batch
/// sizes per variant; this shim always runs one setup per timed sample,
/// which every variant permits).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Exactly one setup per iteration.
    PerIteration,
}

/// Identifier `function_name/parameter` for parameterised benchmarks.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, self.test_mode, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, self.test_mode, |b| f(b));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] (or
/// [`Bencher::iter_batched`]) with the code to time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`: one untimed warmup call, then `sample_size` timed calls.
    /// In `--test` mode `f` runs exactly once, untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup`, excluding setup time
    /// from every sample (one setup per timed call). In `--test` mode the
    /// pair runs exactly once, untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark<F: FnOnce(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("{label:<48} ok (test mode, 1 untimed iteration)");
        return;
    }
    if b.samples.is_empty() {
        println!("{label:<48} (no samples — closure never called iter)");
        return;
    }
    let mut ns: Vec<u128> = b.samples.iter().map(|d| d.as_nanos()).collect();
    ns.sort_unstable();
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if median > 0 => {
            format!("  ({:.2e} elems/s)", n as f64 / (median as f64 * 1e-9))
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} min {} / median {} / mean {}{rate}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean)
    );
    write_estimates(label, min, median, mean, ns.len());
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Writes the upstream-layout `estimates.json` for one benchmark:
/// `target/criterion/<id components…>/new/estimates.json`, nanosecond
/// point estimates.
fn write_estimates(label: &str, min: u128, median: u128, mean: u128, samples: usize) {
    let Some(target) = target_dir() else { return };
    let mut path = target.join("criterion");
    for comp in label.split('/') {
        let sanitized: String = comp
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        path.push(sanitized);
    }
    path.push("new");
    if std::fs::create_dir_all(&path).is_err() {
        return;
    }
    let json = format!(
        "{{\"min\":{{\"point_estimate\":{min}}},\
           \"median\":{{\"point_estimate\":{median}}},\
           \"mean\":{{\"point_estimate\":{mean}}},\
           \"sample_count\":{samples}}}"
    );
    let _ = std::fs::write(path.join("estimates.json"), json);
}

/// The cargo target directory: `$CARGO_TARGET_DIR` when set, else the
/// `target` ancestor of the running bench executable
/// (`target/<profile>/deps/<bench>`).
fn target_dir() -> Option<PathBuf> {
    if let Ok(d) = std::env::var("CARGO_TARGET_DIR") {
        return Some(PathBuf::from(d));
    }
    let exe = std::env::current_exe().ok()?;
    exe.ancestors()
        .find(|p| p.file_name().is_some_and(|n| n == "target"))
        .map(|p| p.to_path_buf())
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
            test_mode: false,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6, "warmup + 5 samples");
    }

    #[test]
    fn batched_iter_excludes_setup_and_counts_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 4,
            test_mode: false,
        };
        let mut setups = 0u32;
        let mut runs = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |v| {
                runs += 1;
                v
            },
            BatchSize::PerIteration,
        );
        assert_eq!(b.samples.len(), 4);
        assert_eq!(setups, 5, "warmup + 4 samples, one setup each");
        assert_eq!(runs, 5);
    }

    #[test]
    fn test_mode_runs_exactly_once_untimed() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 50,
            test_mode: true,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());

        let mut batched_calls = 0u32;
        b.iter_batched(|| (), |()| batched_calls += 1, BatchSize::SmallInput);
        assert_eq!(batched_calls, 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2)
            .throughput(Throughput::Elements(10))
            .bench_with_input(BenchmarkId::new("x", 1), &3u32, |b, &v| {
                b.iter(|| v + 1);
            });
        g.finish();
    }

    #[test]
    fn id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
