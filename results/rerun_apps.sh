#!/bin/sh
# Regenerate the app-workload figures (run after any coherence-protocol change).
set -e
cd "$(dirname "$0")/.."
for f in fig03 fig12 fig13 fig15; do
  cargo run -q --release -p drain-bench --bin $f > results/$f.txt 2>&1
  echo "$f done"
done
