//! `drain-cli` — explore topologies, drain paths and deadlock behaviour
//! from the command line.
//!
//! ```text
//! drain-cli topology mesh8x8 -f 8 -s 42       topology facts
//! drain-cli path ring6                        drain path + turn tables
//! drain-cli simulate mesh8x8 --scheme drain --rate 0.05 --cycles 50000
//! drain-cli deadlock-check mesh8x8 -f 8 --rate 0.2 --cycles 60000
//! ```
//!
//! Topology specs: `meshWxH`, `torusWxH`, `ringN`, `randomN` (degree 3),
//! each optionally followed by `-f <faults> -s <seed>`.

use std::process::ExitCode;

use drain_repro::baselines::{baseline_sim, Baseline};
use drain_repro::drain::builder::DrainNetworkBuilder;
use drain_repro::prelude::*;
use drain_repro::topology::chiplet::random_connected;

fn parse_topology(args: &[String]) -> Result<Topology, String> {
    let spec = args.first().ok_or("missing topology spec")?;
    let base = if let Some(rest) = spec.strip_prefix("mesh") {
        let (w, h) = parse_dims(rest)?;
        Topology::mesh(w, h)
    } else if let Some(rest) = spec.strip_prefix("torus") {
        let (w, h) = parse_dims(rest)?;
        Topology::torus(w, h)
    } else if let Some(rest) = spec.strip_prefix("ring") {
        Topology::ring(rest.parse().map_err(|_| "bad ring size")?)
    } else if let Some(rest) = spec.strip_prefix("random") {
        let n: u16 = rest.parse().map_err(|_| "bad random size")?;
        random_connected(n, 3.0, flag(args, "-s").unwrap_or(1.0) as u64)
    } else {
        return Err(format!("unknown topology spec '{spec}'"));
    };
    let faults = flag(args, "-f").unwrap_or(0.0) as usize;
    if faults == 0 {
        return Ok(base);
    }
    let seed = flag(args, "-s").unwrap_or(1.0) as u64;
    FaultInjector::new(seed)
        .remove_links(&base, faults)
        .map_err(|e| e.to_string())
}

fn parse_dims(s: &str) -> Result<(u16, u16), String> {
    let (w, h) = s.split_once('x').ok_or("dims look like 8x8")?;
    Ok((
        w.parse().map_err(|_| "bad width")?,
        h.parse().map_err(|_| "bad height")?,
    ))
}

fn flag(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn sflag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_topology(args: &[String]) -> Result<(), String> {
    let t = parse_topology(args)?;
    println!("name:        {}", t.name());
    println!("nodes:       {}", t.num_nodes());
    println!("bidir links: {}", t.num_bidirectional_links());
    println!("max degree:  {}", t.max_degree());
    println!("connected:   {}", t.is_connected());
    let d = drain_repro::topology::distance::DistanceMap::new(&t);
    println!("diameter:    {}", d.diameter());
    println!("avg hops:    {:.2}", d.avg_distance());
    println!("diversity:   {:.2} minimal next-hops/pair", d.path_diversity());
    Ok(())
}

fn cmd_path(args: &[String]) -> Result<(), String> {
    let t = parse_topology(args)?;
    let p = DrainPath::compute(&t).map_err(|e| e.to_string())?;
    println!(
        "drain path: {} links (covers every unidirectional link exactly once)",
        p.len()
    );
    p.verify(&t).map_err(|e| e.to_string())?;
    println!("verified:   closed walk, all links once, turn-table is a permutation");
    let hops: Vec<String> = p
        .circuit()
        .iter()
        .map(|&l| {
            let e = t.link(l);
            format!("{}>{}", e.src, e.dst)
        })
        .collect();
    println!("path:       {}", hops.join(" "));
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let t = parse_topology(args)?;
    let scheme = sflag(args, "--scheme").unwrap_or_else(|| "drain".into());
    let rate = flag(args, "--rate").unwrap_or(0.05);
    let cycles = flag(args, "--cycles").unwrap_or(50_000.0) as u64;
    let seed = flag(args, "-s").unwrap_or(1.0) as u64;
    let full_mesh = flag(args, "-f").unwrap_or(0.0) == 0.0 && args[0].starts_with("mesh");
    let traffic = Box::new(SyntheticTraffic::new(
        SyntheticPattern::UniformRandom,
        rate,
        1,
        seed,
    ));
    let mut sim = match scheme.as_str() {
        "drain" => DrainNetworkBuilder::new(t.clone())
            .injection_rate(rate)
            .seed(seed)
            .build()
            .map_err(|e| e.to_string())?,
        "spin" => baseline_sim(&t, Baseline::Spin, full_mesh, traffic, seed),
        "escape-vc" => baseline_sim(&t, Baseline::EscapeVc, full_mesh, traffic, seed),
        "updown" => baseline_sim(&t, Baseline::UpDown, full_mesh, traffic, seed),
        "none" => baseline_sim(&t, Baseline::Unprotected, full_mesh, traffic, seed),
        other => return Err(format!("unknown scheme '{other}'")),
    };
    sim.warmup_and_measure(cycles / 5, cycles);
    let s = sim.stats();
    let now = sim.core().cycle();
    println!("scheme:      {}", sim.mechanism_name());
    println!("routing:     {}", sim.core().routing_name());
    println!("cycles:      {now}");
    println!("delivered:   {}", s.ejected);
    println!("throughput:  {:.4} pkts/node/cycle", s.throughput(now, t.num_nodes()));
    println!("latency:     {:.1} cycles (p99 {})", s.net_latency.mean(), s.net_latency.p99());
    println!("avg hops:    {:.2}", s.avg_hops());
    println!("drains:      {} (forced hops {})", s.drains, s.forced_hops);
    println!("spins:       {} (probe hops {})", s.spins, s.probe_hops);
    Ok(())
}

fn cmd_deadlock_check(args: &[String]) -> Result<(), String> {
    let t = parse_topology(args)?;
    let rate = flag(args, "--rate").unwrap_or(0.2);
    let cycles = flag(args, "--cycles").unwrap_or(60_000.0) as u64;
    let seed = flag(args, "-s").unwrap_or(1.0) as u64;
    let mut sim = Sim::new(
        t.clone(),
        SimConfig {
            vns: 1,
            vcs_per_vn: 2,
            num_classes: 1,
            deadlock_check_interval: 256,
            watchdog_threshold: 10_000,
            seed,
            ..SimConfig::default()
        },
        Box::new(FullyAdaptive::new(&t)),
        Box::new(drain_repro::netsim::mechanism::NoMechanism),
        Box::new(SyntheticTraffic::new(
            SyntheticPattern::UniformRandom,
            rate,
            1,
            seed,
        )),
    )
    .stop_on_deadlock(true);
    let outcome = sim.run(cycles);
    let s = sim.stats();
    println!("unprotected fully adaptive network at rate {rate}:");
    println!("outcome:        {outcome:?}");
    println!("delivered:      {}", s.ejected);
    if s.first_deadlock_cycle != u64::MAX {
        println!("first deadlock: cycle {}", s.first_deadlock_cycle);
        println!("=> this configuration needs a deadlock-freedom scheme (try --scheme drain)");
    } else {
        println!("no deadlock observed within {cycles} cycles");
    }
    Ok(())
}

fn usage() -> &'static str {
    "drain-cli <command> <topology> [options]\n\
     commands:\n\
       topology <spec> [-f faults] [-s seed]      topology facts\n\
       path <spec> [-f faults] [-s seed]          drain path + verification\n\
       simulate <spec> [--scheme drain|spin|escape-vc|updown|none]\n\
                       [--rate R] [--cycles N] [-f faults] [-s seed]\n\
       deadlock-check <spec> [--rate R] [--cycles N] [-f faults] [-s seed]\n\
     topology specs: meshWxH | torusWxH | ringN | randomN"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "topology" => cmd_topology(rest),
        "path" => cmd_path(rest),
        "simulate" => cmd_simulate(rest),
        "deadlock-check" => cmd_deadlock_check(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
