//! # drain-repro — DRAIN: Deadlock Removal for Arbitrary Irregular Networks
//!
//! A from-scratch Rust reproduction of the HPCA 2020 paper *DRAIN: Deadlock
//! Removal for Arbitrary Irregular Networks* (Parasar, Farrokhbakht,
//! Enright Jerger, Gratz, Krishna, San Miguel): a **subactive**
//! deadlock-freedom scheme that neither avoids nor detects deadlocks but
//! periodically and obliviously *drains* escape-VC packets one hop along a
//! precomputed cyclic path covering every link of the network.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`topology`] | `drain-topology` | meshes/irregular/chiplet topologies, fault injection, up*/down*, dependency graphs |
//! | [`path`] | `drain-path` | the offline drain-path algorithm (Eulerian circuits, Hawick–James search, turn-tables) |
//! | [`netsim`] | `drain-netsim` | the cycle-driven VCT NoC simulator (Garnet2.0 substitute) |
//! | [`drain`] | `drain-core` | the DRAIN mechanism: epoch register, pre-drain freeze, drain windows, full drains |
//! | [`baselines`] | `drain-baselines` | SPIN (reactive), escape-VC assembly, the ideal oracle |
//! | [`coherence`] | `drain-coherence` | MESI-lite directory protocol with finite MSHRs/TBEs |
//! | [`workloads`] | `drain-workloads` | PARSEC/SPLASH-2/Ligra statistical models |
//! | [`power`] | `drain-power` | DSENT-substitute area/power model (11 nm) |
//!
//! # Quickstart
//!
//! ```
//! use drain_repro::prelude::*;
//!
//! // An 8x8 mesh that has lost 8 links to wear-out.
//! let topo = FaultInjector::new(42).remove_links(&Topology::mesh(8, 8), 8)?;
//!
//! // DRAIN-protected network: fully adaptive routing, one virtual
//! // network, drain path computed offline.
//! let mut sim = DrainNetworkBuilder::new(topo)
//!     .epoch(65_536)
//!     .injection_rate(0.05)
//!     .build()?;
//! sim.run(10_000);
//! assert!(sim.stats().ejected > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use drain_baselines as baselines;
pub use drain_coherence as coherence;
pub use drain_core as drain;
pub use drain_netsim as netsim;
pub use drain_path as path;
pub use drain_power as power;
pub use drain_topology as topology;
pub use drain_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use drain_baselines::{baseline_sim, Baseline, IdealMechanism, SpinMechanism};
    pub use drain_coherence::{CoherenceConfig, CoherenceEngine, SyntheticMemTrace};
    pub use drain_core::builder::DrainNetworkBuilder;
    pub use drain_core::{DrainConfig, DrainMechanism};
    pub use drain_netsim::routing::{EscapeVcRouting, FullyAdaptive, UpDownAll};
    pub use drain_netsim::traffic::{SyntheticPattern, SyntheticTraffic};
    pub use drain_netsim::{MessageClass, RunOutcome, Sim, SimConfig};
    pub use drain_path::{Algorithm, DrainPath};
    pub use drain_topology::{faults::FaultInjector, LinkId, NodeId, Topology};
    pub use drain_workloads::{app_by_name, ligra, parsec, splash2, AppTrace};
}
