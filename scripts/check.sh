#!/usr/bin/env bash
# Repo-wide checks: lint the whole workspace (warnings are errors), make
# sure the rustdoc for every crate still builds, run the test suite, and
# finish with a short invariant/differential-oracle fuzz smoke (fails on
# any violation; see EXPERIMENTS.md "Invariant checking & fuzzing").
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> drain-fuzz smoke (invariants + differential oracle)"
cargo build --release -p drain-bench --bin drain_fuzz --quiet
./target/release/drain_fuzz --smoke --json results/drain_fuzz_smoke.json
./target/release/drain_fuzz --smoke --seed-fault \
    --json results/drain_fuzz_smoke_fault.json

echo "All checks passed."
