#!/usr/bin/env bash
# Repo-wide checks: lint the whole workspace (warnings are errors), make
# sure the rustdoc for every crate still builds, run the test suite, and
# finish with a short invariant/differential-oracle fuzz smoke (fails on
# any violation; see EXPERIMENTS.md "Invariant checking & fuzzing").
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> drain-fuzz smoke (invariants + differential oracle, 2-shard kernel)"
# --smoke pins the 2-shard allocation kernel, so every smoke point also
# soaks shard determinism: a sharded-kernel divergence shows up as an
# oracle failure here. The wake-driven Phase A scheduler is on (config
# default) for every leg, so the smoke — sabotage injection included —
# also soaks the wake graph under the deep sweep's missed-wake oracle.
cargo build --release -p drain-bench --bin drain_fuzz --quiet
./target/release/drain_fuzz --smoke --json results/drain_fuzz_smoke.json
./target/release/drain_fuzz --smoke --seed-fault \
    --json results/drain_fuzz_smoke_fault.json

echo "==> sharded-kernel differentials (serial vs 2/4-shard bit-identity)"
# Headline schemes at a low and a saturated rate: Stats, final cycle and
# trace bytes must be identical at every shard count (also run as part of
# the workspace suite above; repeated here so a sharded-kernel regression
# is named in CI output, not buried in a 400-test run).
cargo test -p drain-bench --test determinism -q sharded_kernel
cargo test -p drain-netsim -q shard

echo "==> drain-trace smoke (event trace + telemetry on a 4x4 mesh)"
# The binary re-parses every JSONL line it wrote and asserts drain-epoch
# cadence, so a zero exit is the smoke pass; golden-trace determinism is
# covered by the drain-bench test suite above.
cargo build --release -p drain-bench --bin drain_trace --quiet
./target/release/drain_trace --mesh 4x4 --cycles 8192 \
    --out results/trace_smoke
cargo test -p drain-bench --test golden_trace -q

echo "==> trace overhead benchmark (smoke mode)"
cargo bench -p drain-bench --bench trace_overhead -- --test

echo "==> kernel benchmark (smoke mode: untimed low + saturated presets)"
# One untimed pass of every (preset, scheme) point — including the
# saturated preset, so the dense-sweep path can't silently break — plus
# the cross-refactor golden pins: trace-byte and Stats digests recorded
# before the struct-of-arrays kernel landed (see DESIGN.md §7.6). Any
# change to visit order, RNG draw schedule, or candidate ordering fails
# here, not in a figure regeneration a week later.
scripts/bench_kernel.sh --test
cargo test -p drain-bench --test golden_pin -q

echo "==> drain-metrics smoke (registry + phase profiler + exposition round-trip)"
# The binary re-parses its merged JSONL stream and its Prometheus file
# (round-trip must be byte-identical) and asserts the merged phase
# attribution sums to ~100%; the profiler-is-invisible differentials get
# a named CI line alongside it.
cargo build --release -p drain-bench --bin drain_metrics --quiet
./target/release/drain_metrics --mesh 4x4 --cycles 8192 --points 2 \
    --out results/metrics_smoke
cargo test -p drain-bench --test metrics -q
# Golden pins must reproduce with the profiler sampling at the default
# cadence — metrics are pure observers and this holds them to it.
DRAIN_PROFILE=64 cargo test -p drain-bench --test golden_pin -q

echo "==> wake-scheduler smoke (wake-vs-dense differentials + dense golden pins)"
# The golden-pin run above already gates the wake-driven Phase A scheduler
# (it is the config default). Here the wake-vs-dense differentials get a
# named CI line, and the pins are repeated once with the dense scan forced
# — both schedulers must reproduce the same FNV constants bit-for-bit.
cargo test -p drain-bench --test determinism -q wake_scheduler
DRAIN_PHASE_A=dense cargo test -p drain-bench --test golden_pin -q

echo "==> keyed-RNG smoke (keyed pins + differentials + keyed fuzz leg)"
# The keyed counter-based RNG (DESIGN.md §11, determinism contract v2)
# has its own golden-pin family and differential suite: keyed pins must
# reproduce at K ∈ {1, 2, 4, 8} × wake on/off × fast-forward on/off,
# the sharded planners must perform exactly the serial draw count (no
# census replay), and keyed draws must be invariant under visit-order
# permutations and arbitrary shard partitions. All keyed tests set
# their mode explicitly, so these filters are env-independent; the
# DRAIN_RNG=keyed env path is exercised by the fuzz leg, which also
# re-proves sabotage detection is mode-independent.
cargo test -p drain-bench --test golden_pin -q keyed
cargo test -p drain-bench --test determinism -q keyed
cargo test -p drain-netsim --test rng_props -q
DRAIN_RNG=keyed ./target/release/drain_fuzz --smoke \
    --json results/drain_fuzz_smoke_keyed.json
./target/release/drain_fuzz --smoke --rng-mode keyed --seed-fault \
    --json results/drain_fuzz_smoke_keyed_fault.json

echo "All checks passed."
