#!/usr/bin/env bash
# Repo-wide static checks: lint the whole workspace (warnings are errors)
# and make sure the rustdoc for every crate still builds.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "All checks passed."
