#!/usr/bin/env bash
# Times the per-cycle simulator kernel (the `sim_kernel` criterion bench:
# low-injection, saturated, and congested-irregular presets over the
# headline schemes, plus keyed-RNG variants of the saturated and
# congested presets) and records the medians in BENCH_kernel.json at the
# repo root. Every preset entry carries an "rng_mode" field
# ("stream" or "keyed") naming the determinism contract it ran under;
# the *_keyed presets are the same points as their stream twins with
# RngMode::Keyed, so keyed-vs-stream is a same-session comparison.
#
# Usage:
#   scripts/bench_kernel.sh             bench + write BENCH_kernel.json
#   scripts/bench_kernel.sh --test      one untimed pass per preset (CI
#                                       smoke; writes nothing)
#   scripts/bench_kernel.sh --baseline  bench + write the numbers to
#                                       BENCH_kernel.baseline.json instead
#                                       — run this on a reference commit
#                                       (see EXPERIMENTS.md "Kernel
#                                       performance") so the next default
#                                       run reports speedups against it
#   scripts/bench_kernel.sh --rng       interleaved keyed-vs-stream
#                                       timing (kernel_time binary,
#                                       best-of-7, both modes alternated
#                                       in one process) written
#                                       commit-stamped to
#                                       BENCH_kernel_rng.json
#   scripts/bench_kernel.sh --shards    bench the sim_kernel_shards group
#                                       (saturated mesh(16,16) at shard
#                                       counts 1/2/4/8) and merge the
#                                       per-K medians plus the k4-vs-k1
#                                       speedup into BENCH_kernel.json as
#                                       its final "shards" key
#
# Keep PRESET_CYCLES, SCHEMES, and SHARD_CYCLES in sync with
# crates/bench/benches/sim_kernel.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

declare -A PRESET_CYCLES=(
    [low]=20000 [saturated]=5000 [saturated_keyed]=5000
    [irregular]=2000 [irregular_keyed]=2000
)
PRESETS=(low saturated saturated_keyed irregular irregular_keyed)
SCHEMES=(escapevc spin drain)
SHARD_CYCLES=1500

# Criterion directory for one preset's estimates ("irregular" lives in
# its own benchmark group — a congested faulty mesh(12,12), the wake
# scheduler's target regime).
preset_dir() { # <preset>
    case "$1" in
        irregular)       echo "sim_kernel_irregular/congested" ;;
        irregular_keyed) echo "sim_kernel_irregular/congested_keyed" ;;
        *)               echo "sim_kernel/$1" ;;
    esac
}

# Determinism contract a preset runs under (see DESIGN.md §11).
preset_mode() { # <preset>
    case "$1" in
        *_keyed) echo keyed ;;
        *)       echo stream ;;
    esac
}

if [[ "${1:-}" == "--test" ]]; then
    exec cargo bench -p drain-bench --bench sim_kernel -- --test
fi

OUT=BENCH_kernel.json
BASELINE=BENCH_kernel.baseline.json
if [[ "${1:-}" == "--baseline" ]]; then
    OUT="$BASELINE"
fi

# Stamp with the commit actually checked out at run time (plus a -dirty
# suffix when the worktree has uncommitted changes), so a stale JSON is
# recognisable by its hash instead of masquerading as current.
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if [[ "$commit" != unknown && -n "$(git status --porcelain 2>/dev/null)" ]]; then
    commit="$commit-dirty"
fi

# Median per-iteration nanoseconds from the shim's estimates.json.
median_ns() { # <preset> <scheme>  (relative to target/criterion/<group>)
    local f="target/criterion/$1/$2/new/estimates.json"
    sed -n 's/.*"median":{"point_estimate":\([0-9]*\)}.*/\1/p' "$f"
}

# ns/cycle with one decimal.
per_cycle() { # <total-ns> <cycles>
    awk -v t="$1" -v c="$2" 'BEGIN { printf "%.1f", t / c }'
}

if [[ "${1:-}" == "--rng" ]]; then
    # Same-session keyed-vs-stream comparison: the kernel_time harness
    # alternates RngMode::Stream and RngMode::Keyed within one process
    # (best-of-7 each), so container drift between measurement windows
    # cannot fabricate the ratio. Criterion's *_keyed presets above
    # remain the per-scheme medians; this file records the floors.
    cargo build --release -p drain-bench --bin kernel_time --quiet
    lines=$(./target/release/kernel_time --preset all --reps 7)
    # The sharded points are where the keyed contract retires real work
    # (stream-mode planners replay the global draw census in every
    # shard; keyed planners sweep only owned slots).
    for k in 1 4 8; do
        lines+=$'\n'$(./target/release/kernel_time --preset mesh16 --reps 7 --shards "$k")
    done
    printf '{"commit":"%s","bench":"kernel_time","unit":"ns/cycle","points":[\n' \
        "$commit" > BENCH_kernel_rng.json
    printf '%s\n' "$lines" | sed '$!s/$/,/' >> BENCH_kernel_rng.json
    printf ']}\n' >> BENCH_kernel_rng.json
    echo "wrote BENCH_kernel_rng.json"
    cat BENCH_kernel_rng.json
    exit 0
fi

if [[ "${1:-}" == "--shards" ]]; then
    cargo bench -p drain-bench --bench sim_kernel -- 'sim_kernel_shards|sim_kernel_mesh16'
    # Serial (K=1) mesh(16,16) saturated medians for all three headline
    # schemes — the same-preset comparison for the per-K drain numbers.
    serial_json=""
    for scheme in "${SCHEMES[@]}"; do
        ns=$(median_ns sim_kernel_mesh16/saturated "$scheme")
        [[ -n "$ns" ]] || { echo "missing estimates for mesh16/$scheme" >&2; exit 1; }
        serial_json+="\"$scheme\":$(per_cycle "$ns" "$SHARD_CYCLES"),"
    done
    shards_json=""
    declare -A K_NPC
    for k in 1 2 4 8; do
        ns=$(median_ns sim_kernel_shards/mesh16 "k$k")
        [[ -n "$ns" ]] || { echo "missing estimates for shards/k$k" >&2; exit 1; }
        npc=$(per_cycle "$ns" "$SHARD_CYCLES")
        K_NPC[$k]=$npc
        shards_json+="\"k$k\":$npc,"
    done
    ratio=$(awk -v a="${K_NPC[1]}" -v b="${K_NPC[4]}" 'BEGIN { printf "%.2f", a / b }')
    frag="\"shards\":{\"topo\":\"mesh16x16\",\"scheme\":\"drain\",\"rate\":0.40,"
    frag+="\"cycles\":$SHARD_CYCLES,"
    frag+="\"serial_ns_per_cycle\":{${serial_json%,}},"
    frag+="\"median_ns_per_cycle\":{${shards_json%,}},"
    frag+="\"speedup_k4_vs_k1\":$ratio}"
    if [[ -f "$OUT" ]]; then
        # Replace a previous "shards" key (always the final key) if
        # present, else splice before the root's closing brace.
        json=$(sed 's/,"shards":.*/}/' "$OUT")
        printf '%s,%s}\n' "${json%\}}" "$frag" > "$OUT"
    else
        printf '{"commit":"%s","bench":"sim_kernel",%s}\n' "$commit" "$frag" > "$OUT"
    fi
    echo "wrote $OUT"
    cat "$OUT"
    exit 0
fi

cargo bench -p drain-bench --bench sim_kernel -- 'sim_kernel/|sim_kernel_irregular'

# Median of three values.
median3() {
    printf '%s\n' "$@" | sort -g | sed -n 2p
}

# Pull a recorded per-preset median back out of a previous baseline file
# (tolerating baselines captured before the "rng_mode" field existed).
baseline_median() { # <preset>
    sed -n "s/.*\"$1\":{\"cycles\":[0-9]*,\(\"rng_mode\":\"[a-z]*\",\)\{0,1\}\"median_ns_per_cycle\":\([0-9.]*\).*/\2/p" \
        "$BASELINE" | head -n1
}

presets_json=""
declare -A PRESET_MEDIAN
for preset in "${PRESETS[@]}"; do
    cycles=${PRESET_CYCLES[$preset]}
    schemes_json=""
    vals=()
    for scheme in "${SCHEMES[@]}"; do
        ns=$(median_ns "$(preset_dir "$preset")" "$scheme")
        [[ -n "$ns" ]] || { echo "missing estimates for $preset/$scheme" >&2; exit 1; }
        npc=$(per_cycle "$ns" "$cycles")
        vals+=("$npc")
        schemes_json+="\"$scheme\":$npc,"
    done
    med=$(median3 "${vals[@]}")
    PRESET_MEDIAN[$preset]=$med
    presets_json+="\"$preset\":{\"cycles\":$cycles,\"rng_mode\":\"$(preset_mode "$preset")\","
    presets_json+="\"median_ns_per_cycle\":$med,"
    presets_json+="\"schemes\":{${schemes_json%,}}},"
done

speedup_json=""
if [[ "$OUT" != "$BASELINE" && -f "$BASELINE" ]]; then
    base_commit=$(sed -n 's/.*"commit":"\([^"]*\)".*/\1/p' "$BASELINE" | head -n1)
    for preset in "${PRESETS[@]}"; do
        base=$(baseline_median "$preset")
        [[ -n "$base" ]] || continue
        ratio=$(awk -v b="$base" -v n="${PRESET_MEDIAN[$preset]}" \
            'BEGIN { printf "%.2f", b / n }')
        speedup_json+="\"$preset\":$ratio,"
    done
    if [[ -n "$speedup_json" ]]; then
        speedup_json="\"baseline_commit\":\"$base_commit\",\"speedup_vs_baseline\":{${speedup_json%,}},"
    fi
fi

printf '{"commit":"%s","bench":"sim_kernel","unit":"ns/cycle",%s"presets":{%s}}\n' \
    "$commit" "$speedup_json" "${presets_json%,}" > "$OUT"
echo "wrote $OUT"
cat "$OUT"
