//! Coarse, fast assertions that the paper's headline result *shapes* hold
//! (the full-resolution versions live in the `drain-bench` binaries).

use drain_repro::baselines::{baseline_sim, Baseline};
use drain_repro::power::{network_model, MechanismKind};
use drain_repro::prelude::*;

fn traffic(rate: f64, seed: u64) -> Box<SyntheticTraffic> {
    Box::new(SyntheticTraffic::new(
        SyntheticPattern::UniformRandom,
        rate,
        1,
        seed,
    ))
}

/// Fig 9 shape: DRAIN saves the majority of router area and power.
#[test]
fn fig9_shape_power_savings() {
    let topo = Topology::mesh(8, 8);
    let esc = network_model(&topo, 3, 2, MechanismKind::EscapeVc, 0, 1, 1.0);
    let spin = network_model(&topo, 3, 1, MechanismKind::Spin, 0, 1, 1.0);
    let drain = network_model(&topo, 1, 1, MechanismKind::Drain, 0, 1, 1.0);
    let area_saving = 1.0 - drain.router_area_um2 / esc.router_area_um2;
    let power_saving = 1.0 - drain.router_static_mw / esc.router_static_mw;
    assert!((0.60..0.85).contains(&area_saving), "area saving {area_saving}");
    assert!(
        (0.65..0.90).contains(&power_saving),
        "power saving {power_saving}"
    );
    assert!(spin.router_area_um2 < esc.router_area_um2);
    assert!(spin.router_area_um2 > drain.router_area_um2);
}

/// Fig 4 shape: most virtual-network power is wasted at application loads.
#[test]
fn fig4_shape_wasted_power_dominates() {
    let topo = Topology::mesh(4, 4);
    let mut sim = baseline_sim(&topo, Baseline::EscapeVc, true, traffic(0.03, 1), 1);
    sim.run(10_000);
    let p = network_model(
        &topo,
        3,
        2,
        MechanismKind::EscapeVc,
        sim.stats().flit_hops,
        sim.core().cycle(),
        1.0,
    );
    assert!(
        p.wasted_mw > 2.0 * p.active_mw,
        "wasted {} vs active {}",
        p.wasted_mw,
        p.active_mw
    );
}

/// Fig 5 shape: up*/down* is never faster than the ideal adaptive oracle
/// on a faulty mesh, in latency or throughput.
#[test]
fn fig5_shape_updown_below_ideal() {
    let topo = FaultInjector::new(2)
        .remove_links(&Topology::mesh(6, 6), 8)
        .unwrap();
    let mut ud = baseline_sim(&topo, Baseline::UpDown, false, traffic(0.05, 3), 3);
    ud.warmup_and_measure(2_000, 8_000);
    let mut ideal = baseline_sim(&topo, Baseline::Ideal, false, traffic(0.05, 3), 3);
    ideal.warmup_and_measure(2_000, 8_000);
    assert!(ud.stats().net_latency.mean() >= ideal.stats().net_latency.mean() * 0.98);
    let n = topo.num_nodes();
    assert!(
        ud.stats().throughput(ud.core().cycle(), n)
            <= ideal.stats().throughput(ideal.core().cycle(), n) * 1.05
    );
}

/// Figs 10/11 shape: at low load DRAIN matches SPIN closely.
#[test]
fn fig11_shape_drain_matches_spin_at_low_load() {
    let topo = FaultInjector::new(7)
        .remove_links(&Topology::mesh(6, 6), 4)
        .unwrap();
    let mut spin = baseline_sim(&topo, Baseline::Spin, false, traffic(0.02, 5), 5);
    spin.warmup_and_measure(2_000, 8_000);
    let path = DrainPath::compute(&topo).unwrap();
    let mut drain = Sim::new(
        topo.clone(),
        SimConfig {
            num_classes: 1,
            watchdog_threshold: 0,
            seed: 5,
            ..SimConfig::drain_default()
        },
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(DrainMechanism::new(path, DrainConfig::default())),
        Box::new(SyntheticTraffic::new(
            SyntheticPattern::UniformRandom,
            0.02,
            1,
            5,
        )),
    );
    drain.warmup_and_measure(2_000, 8_000);
    let ls = spin.stats().net_latency.mean();
    let ld = drain.stats().net_latency.mean();
    assert!(
        (ld - ls).abs() / ls < 0.15,
        "low-load latency should match (spin {ls:.1}, drain {ld:.1})"
    );
}

/// Fig 14 shape: a tiny epoch (continuous draining) hurts latency.
#[test]
fn fig14_shape_tiny_epoch_hurts() {
    let topo = Topology::mesh(4, 4);
    let lat_at = |epoch: u64| {
        let mut sim = DrainNetworkBuilder::new(topo.clone())
            .epoch(epoch)
            .injection_rate(0.05)
            .seed(8)
            .build()
            .unwrap();
        sim.warmup_and_measure(2_000, 8_000);
        sim.stats().net_latency.mean()
    };
    let tiny = lat_at(16);
    let large = lat_at(16_384);
    assert!(
        tiny > large * 1.3,
        "16-cycle epoch ({tiny:.1}) must be clearly worse than 16K ({large:.1})"
    );
}
