//! Livelock/starvation backstop (paper §III-C2, §III-D3): when ejection
//! ports stay busy, drained packets can be misrouted repeatedly; the
//! periodic *full drain* walks every packet past its destination with an
//! ejection opportunity at each visit, bounding starvation.

use drain_repro::netsim::traffic::Endpoints;
use drain_repro::prelude::*;

/// An endpoint model that refuses to consume ejections until a given
/// cycle — modeling a long ejection-port outage — then consumes freely.
struct StalledSink {
    resume_at: u64,
}

impl Endpoints for StalledSink {
    fn name(&self) -> &str {
        "stalled-sink"
    }

    fn pre_cycle(&mut self, core: &mut drain_repro::netsim::SimCore) {
        if core.cycle() < self.resume_at {
            return;
        }
        let n = core.topology().num_nodes();
        for ni in 0..n {
            let node = NodeId(ni as u16);
            while core.pop_ejection(node, MessageClass::REQUEST).is_some() {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn build(full_drain_period: u64) -> Sim {
    let topo = Topology::mesh(3, 3);
    let path = DrainPath::compute(&topo).unwrap();
    let mech = DrainMechanism::new(
        path,
        DrainConfig {
            epoch: 256,
            full_drain_period,
            ..DrainConfig::default()
        },
    );
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            vns: 1,
            vcs_per_vn: 1,
            num_classes: 1,
            ej_queue_capacity: 1,
            escape_sticky: true,
            watchdog_threshold: 0,
            ..SimConfig::default()
        },
        Box::new(FullyAdaptive::with_deflection(&topo, None)),
        Box::new(mech),
        Box::new(StalledSink { resume_at: 8_000 }),
    );
    // Seed traffic while the sink is stalled: many cross-mesh packets.
    for i in 0..9u16 {
        for j in 0..2 {
            let dest = NodeId((i + 4 + j) % 9);
            sim.core_mut()
                .try_enqueue_packet(NodeId(i), dest, MessageClass::REQUEST, 1, 0);
        }
    }
    sim
}

#[test]
fn full_drain_keeps_packets_moving_through_an_ejection_outage() {
    let mut sim = build(4); // full drain every 4 windows
    // During the outage the network cannot deliver more than the queue
    // capacity, but drains keep everything moving (no stuck knot).
    sim.run(8_000);
    let s = sim.stats();
    assert!(s.full_drains > 0, "full drains ran during the outage");
    assert!(
        s.forced_hops > 50,
        "packets kept circulating: {} forced hops",
        s.forced_hops
    );
    // Once the sink resumes, everything delivers.
    let outcome = sim.run(30_000);
    assert_eq!(sim.core().live_packets(), 0, "all packets delivered");
    assert_eq!(sim.stats().injected, sim.stats().ejected);
    let _ = outcome;
}

#[test]
fn full_drain_ejects_at_every_destination_visit() {
    // With the sink consuming normally, a full drain flushes every
    // escape-VC packet: each one passes its destination router during the
    // walk (the drain path visits every router).
    let topo = Topology::mesh(3, 3);
    let path = DrainPath::compute(&topo).unwrap();
    let mech = DrainMechanism::new(
        path,
        DrainConfig {
            epoch: 100,
            full_drain_period: 1,
            ..DrainConfig::default()
        },
    );
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            vns: 1,
            vcs_per_vn: 1,
            num_classes: 1,
            escape_sticky: true,
            watchdog_threshold: 0,
            ..SimConfig::default()
        },
        Box::new(FullyAdaptive::with_deflection(&topo, None)),
        Box::new(mech),
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 0)),
    );
    // Fill several escape VCs with far-destination packets via the
    // scripted deadlock placement pattern.
    use drain_repro::netsim::VcRef;
    let placements = [((0u16, 1u16), 8u16), ((1, 2), 6), ((3, 4), 2), ((7, 8), 0)];
    for &((src, at), dest) in &placements {
        let link = topo.link_between(NodeId(src), NodeId(at)).unwrap();
        sim.core_mut().place_packet(
            VcRef { link, vn: 0, vc: 0 },
            NodeId(src),
            NodeId(dest),
            MessageClass::REQUEST,
            1,
        );
    }
    sim.run(1_000);
    assert!(sim.stats().full_drains > 0);
    assert_eq!(sim.stats().ejected, 4, "every packet delivered");
}
