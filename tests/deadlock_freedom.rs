//! End-to-end deadlock-freedom guarantees across the whole stack.

use drain_repro::prelude::*;
use drain_repro::netsim::mechanism::NoMechanism;
use drain_repro::netsim::VcRef;

/// Builds the Fig 8 scripted double-deadlock on the 3x3 faulty mesh.
fn fig8_deadlock_sim(mechanism: Box<dyn drain_repro::netsim::mechanism::Mechanism>) -> Sim {
    let topo = drain_repro::topology::chiplet::fig8_topology();
    let config = SimConfig {
        vns: 1,
        vcs_per_vn: 1,
        num_classes: 1,
        escape_sticky: true,
        watchdog_threshold: 0,
        ..SimConfig::default()
    };
    // Strictly minimal adaptive routing: the scripted knots of Fig 8 are
    // deadlocks only when blocked packets cannot deflect sideways.
    let mut sim = Sim::new(
        topo.clone(),
        config,
        Box::new(FullyAdaptive::with_deflection(&topo, None)),
        mechanism,
        Box::new(SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.0, 1, 0)),
    );
    let placements = [
        ((1u16, 0u16), 6u16),
        ((0, 3), 5),
        ((3, 4), 2),
        ((4, 1), 0),
        ((7, 4), 5),
        ((4, 5), 8),
        ((5, 8), 7),
        ((8, 7), 4),
    ];
    for &((src, at), dest) in &placements {
        let link = topo.link_between(NodeId(src), NodeId(at)).unwrap();
        sim.core_mut().place_packet(
            VcRef { link, vn: 0, vc: 0 },
            NodeId(src),
            NodeId(dest),
            MessageClass::REQUEST,
            1,
        );
    }
    sim
}

#[test]
fn scripted_deadlock_is_real() {
    let sim = fig8_deadlock_sim(Box::new(NoMechanism));
    let report = drain_repro::netsim::deadlock::detect(sim.core());
    assert_eq!(report.deadlocked.len(), 8, "all eight packets are knotted");
}

#[test]
fn unprotected_never_recovers() {
    let mut sim = fig8_deadlock_sim(Box::new(NoMechanism));
    sim.run(10_000);
    assert_eq!(sim.stats().ejected, 0);
    assert_eq!(sim.core().packets_in_network(), 8);
}

#[test]
fn drain_removes_scripted_deadlock() {
    let topo = drain_repro::topology::chiplet::fig8_topology();
    let path = DrainPath::compute(&topo).unwrap();
    let mech = DrainMechanism::new(
        path,
        DrainConfig {
            epoch: 100,
            ..DrainConfig::default()
        },
    );
    let mut sim = fig8_deadlock_sim(Box::new(mech));
    sim.run(3_000);
    assert_eq!(sim.stats().ejected, 8, "all packets delivered after drains");
    assert!(sim.stats().drains + sim.stats().full_drains >= 1);
}

#[test]
fn spin_removes_scripted_deadlock() {
    let mech = SpinMechanism::new(drain_repro::baselines::SpinConfig {
        timeout: 50,
        ..Default::default()
    });
    let mut sim = fig8_deadlock_sim(Box::new(mech));
    sim.run(5_000);
    assert_eq!(sim.stats().ejected, 8, "all packets delivered after spins");
    assert!(sim.stats().spins >= 1);
}

#[test]
fn single_vn_mesi_wedges_without_drain_and_survives_with_it() {
    let topo = Topology::mesh(4, 4);
    let build = |protected: bool| -> Sim {
        let engine = CoherenceEngine::new(
            &topo,
            CoherenceConfig::default(),
            Box::new(SyntheticMemTrace::uniform(0.05, 0.4, 256, 11)),
        );
        let config = SimConfig {
            vns: 1,
            vcs_per_vn: 2,
            num_classes: 3,
            inj_queue_capacity: topo.num_nodes() + 8,
            escape_sticky: true,
            watchdog_threshold: 20_000,
            ..SimConfig::default()
        };
        let mechanism: Box<dyn drain_repro::netsim::mechanism::Mechanism> = if protected {
            Box::new(DrainMechanism::new(
                DrainPath::compute(&topo).unwrap(),
                DrainConfig {
                    epoch: 8_192,
                    ..DrainConfig::default()
                },
            ))
        } else {
            Box::new(NoMechanism)
        };
        Sim::new(
            topo.clone(),
            config,
            Box::new(FullyAdaptive::new(&topo)),
            mechanism,
            Box::new(engine),
        )
    };
    let mut unprotected = build(false);
    unprotected.run(150_000);
    assert!(
        unprotected.stats().watchdog_deadlock,
        "single-VN MESI under write pressure must deadlock unprotected"
    );
    let mut drained = build(true);
    drained.run(150_000);
    assert!(!drained.stats().watchdog_deadlock, "DRAIN keeps it live");
    // The unprotected network wedges at some point and stops delivering;
    // DRAIN keeps delivering to the end of the run.
    assert!(
        drained.stats().ejected > unprotected.stats().ejected,
        "DRAIN delivers more ({} vs {})",
        drained.stats().ejected,
        unprotected.stats().ejected
    );
}

#[test]
fn escape_vc_baseline_needs_three_vns_for_protocol_freedom() {
    // The proactive baseline with its full 3 virtual networks stays live
    // under the same load that wedges the single-VN configuration.
    let topo = Topology::mesh(4, 4);
    let engine = CoherenceEngine::new(
        &topo,
        CoherenceConfig::default(),
        Box::new(SyntheticMemTrace::uniform(0.05, 0.4, 256, 11)),
    );
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            inj_queue_capacity: topo.num_nodes() + 8,
            escape_sticky: true,
            watchdog_threshold: 30_000,
            ..SimConfig::escape_vc_baseline()
        },
        Box::new(EscapeVcRouting::with_dor(&topo)),
        Box::new(NoMechanism),
        Box::new(engine),
    );
    sim.run(120_000);
    assert!(!sim.stats().watchdog_deadlock);
    assert!(sim.stats().ejected > 1_000);
}

#[test]
fn drain_survives_irregular_torture() {
    // Faulty topology + moderate load + small epoch: every injected packet
    // must eventually be delivered once injection stops.
    let topo = FaultInjector::new(3)
        .remove_links(&Topology::mesh(5, 5), 6)
        .unwrap();
    let path = DrainPath::compute(&topo).unwrap();
    let mech = DrainMechanism::new(
        path,
        DrainConfig {
            epoch: 2_048,
            full_drain_period: 8,
            ..DrainConfig::default()
        },
    );
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            num_classes: 1,
            watchdog_threshold: 0,
            ..SimConfig::drain_default()
        },
        Box::new(FullyAdaptive::new(&topo)),
        Box::new(mech),
        Box::new(
            SyntheticTraffic::new(SyntheticPattern::UniformRandom, 0.15, 1, 13)
                .stop_injection_at(20_000),
        ),
    );
    let outcome = sim.run(200_000);
    assert_eq!(outcome, RunOutcome::WorkloadFinished, "network must empty");
    assert_eq!(sim.stats().injected, sim.stats().ejected);
}
