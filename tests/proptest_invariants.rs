//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

use drain_repro::netsim::CheckConfig;
use drain_repro::path::{Algorithm, DrainPath};
use drain_repro::prelude::*;
use drain_repro::topology::chiplet::random_connected;
use drain_repro::topology::depgraph::DependencyGraph;
use drain_repro::topology::distance::DistanceMap;
use drain_repro::topology::updown::{Phase, UpDownRouting};

/// Strategy: an arbitrary connected topology (faulty mesh or random graph).
fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        // Faulty meshes: dims 3..=6, faults bounded by removable links.
        (3u16..=6, 3u16..=6, 0usize..=6, any::<u64>()).prop_map(|(w, h, faults, seed)| {
            let base = Topology::mesh(w, h);
            if faults == 0 {
                base
            } else {
                FaultInjector::new(seed)
                    .remove_links(&base, faults)
                    .unwrap_or(base)
            }
        }),
        // Random connected graphs.
        (6u16..=24, any::<u64>()).prop_map(|(n, seed)| random_connected(n, 3.0, seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn drain_path_covers_every_link(topo in arb_topology()) {
        let p = DrainPath::compute(&topo).unwrap();
        prop_assert_eq!(p.len(), topo.num_unidirectional_links());
        prop_assert!(p.verify(&topo).is_ok());
        prop_assert!(p.turn_table().is_permutation());
    }

    #[test]
    fn both_offline_algorithms_agree_on_coverage(topo in arb_topology()) {
        let a = DrainPath::compute_with(&topo, Algorithm::Hierholzer).unwrap();
        let b = DrainPath::compute_with(&topo, Algorithm::HawickJames).unwrap();
        prop_assert_eq!(a.len(), b.len());
        prop_assert!(b.verify(&topo).is_ok());
    }

    #[test]
    fn offline_algorithms_produce_identical_turn_tables(topo in arb_topology()) {
        // Stronger than agreeing on coverage: both offline algorithms must
        // install the *same* next-hop permutation at every router, so a
        // deployment can switch algorithms without changing behaviour.
        let a = DrainPath::compute_with(&topo, Algorithm::Hierholzer).unwrap();
        let b = DrainPath::compute_with(&topo, Algorithm::HawickJames).unwrap();
        for l in topo.link_ids() {
            prop_assert!(
                a.next_link(l) == b.next_link(l),
                "turn tables diverge at link {}",
                l.index()
            );
        }
    }

    #[test]
    fn drain_path_is_closed_walk_in_dependency_graph(topo in arb_topology()) {
        let p = DrainPath::compute(&topo).unwrap();
        let dep = DependencyGraph::new(&topo);
        prop_assert!(dep.is_closed_walk(p.circuit()));
    }

    #[test]
    fn fault_injection_preserves_connectivity(
        seed in any::<u64>(),
        faults in 1usize..=10,
    ) {
        let base = Topology::mesh(6, 6);
        let t = FaultInjector::new(seed).remove_links(&base, faults).unwrap();
        prop_assert!(t.is_connected());
        prop_assert_eq!(t.num_bidirectional_links(), base.num_bidirectional_links() - faults);
        prop_assert_eq!(t.num_nodes(), base.num_nodes());
    }

    #[test]
    fn distances_satisfy_triangle_step(topo in arb_topology()) {
        let d = DistanceMap::new(&topo);
        for l in topo.link_ids() {
            let e = topo.link(l);
            for dest in topo.nodes() {
                let a = d.distance(e.src, dest);
                let b = d.distance(e.dst, dest);
                // One hop changes distance by at most one.
                prop_assert!(a.abs_diff(b) <= 1);
            }
        }
    }

    #[test]
    fn updown_routes_all_pairs(topo in arb_topology()) {
        let ud = UpDownRouting::new(&topo);
        for s in topo.nodes() {
            for t in topo.nodes() {
                if s == t { continue; }
                prop_assert!(
                    ud.legal_distance(s, t, Phase::CanUp) != u16::MAX,
                    "no legal up*/down* path {s:?}->{t:?}"
                );
            }
        }
    }

    #[test]
    fn short_drain_sim_conserves_packets(
        topo in arb_topology(),
        seed in any::<u64>(),
        rate in 0.01f64..0.2,
    ) {
        // Full runtime invariant checks ride along (panic-on-violation, so
        // any conservation/occupancy/reachability breach fails the case
        // with a replayable seed), on arbitrary irregular topologies.
        let mut sim = DrainNetworkBuilder::new(topo)
            .sim_config(SimConfig {
                num_classes: 1,
                checks: CheckConfig::full().with_progress_horizon(4_096),
                ..SimConfig::drain_default()
            })
            .epoch(512)
            .injection_rate(rate)
            .seed(seed)
            .build()
            .unwrap();
        sim.run(3_000);
        let s = sim.stats();
        prop_assert_eq!(
            s.generated + sim.core().ejection_backlog() as u64,
            s.ejected + sim.core().live_packets() as u64
        );
        prop_assert!(s.injected >= s.ejected);
    }

    #[test]
    fn wake_scheduler_never_misses_a_wake(
        topo in arb_topology(),
        seed in any::<u64>(),
        rate in 0.05f64..0.4,
    ) {
        // Missed-wake oracle on arbitrary irregular topologies: a parked
        // VC that the dense Phase A scan would move this cycle is a
        // violation. The deep check sweep re-runs that oracle every 64
        // cycles during the run (panic-on-violation with a replayable
        // seed); the explicit call below re-checks the final state, and
        // the dense re-run pins down end-to-end equivalence — if any wake
        // had been missed, the runs would diverge.
        let build = |topo: Topology, wake: bool| {
            let mut sim = DrainNetworkBuilder::new(topo)
                .sim_config(SimConfig {
                    num_classes: 1,
                    checks: CheckConfig::full().with_progress_horizon(4_096),
                    ..SimConfig::drain_default()
                })
                .epoch(512)
                .injection_rate(rate)
                .seed(seed)
                .build()
                .unwrap();
            sim.set_wake_scheduler(wake);
            sim
        };
        let mut sim = build(topo.clone(), true);
        sim.run(3_000);
        prop_assert!(
            sim.core().validate_wake_parking().is_ok(),
            "missed wake: {:?}",
            sim.core().validate_wake_parking()
        );
        let mut dense = build(topo, false);
        dense.run(3_000);
        prop_assert_eq!(sim.stats(), dense.stats());
    }
}
