//! Determinism and conservation invariants across the full stack.

use drain_repro::baselines::{baseline_sim, Baseline};
use drain_repro::prelude::*;

fn traffic(rate: f64, seed: u64) -> Box<SyntheticTraffic> {
    Box::new(SyntheticTraffic::new(
        SyntheticPattern::UniformRandom,
        rate,
        1,
        seed,
    ))
}

#[test]
fn identical_seeds_identical_runs() {
    let topo = FaultInjector::new(5)
        .remove_links(&Topology::mesh(5, 5), 4)
        .unwrap();
    for b in [Baseline::EscapeVc, Baseline::Spin, Baseline::Ideal] {
        let run = |seed: u64| {
            let mut sim = baseline_sim(&topo, b, false, traffic(0.08, seed), seed);
            sim.run(8_000);
            (
                sim.stats().injected,
                sim.stats().ejected,
                sim.stats().hops,
                sim.stats().net_latency.count(),
            )
        };
        assert_eq!(run(3), run(3), "{:?} must be deterministic", b);
        assert_ne!(run(3), run(4), "{:?} must respond to the seed", b);
    }
}

#[test]
fn drain_runs_are_deterministic() {
    let topo = Topology::mesh(4, 4);
    let run = |seed: u64| {
        let mut sim = DrainNetworkBuilder::new(topo.clone())
            .epoch(1_024)
            .injection_rate(0.1)
            .seed(seed)
            .build()
            .unwrap();
        sim.run(12_000);
        (sim.stats().ejected, sim.stats().drains, sim.stats().forced_hops)
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn packets_conserved_under_every_scheme() {
    let topo = FaultInjector::new(8)
        .remove_links(&Topology::mesh(5, 5), 4)
        .unwrap();
    for b in [
        Baseline::EscapeVc,
        Baseline::Spin,
        Baseline::UpDown,
        Baseline::Ideal,
    ] {
        let mut sim = baseline_sim(&topo, b, false, traffic(0.1, 2), 2);
        sim.run(10_000);
        let s = sim.stats();
        let live = sim.core().live_packets() as u64;
        let backlog = sim.core().ejection_backlog() as u64;
        // Delivered-but-unconsumed packets are both "ejected" and "live".
        assert_eq!(
            s.generated + backlog,
            s.ejected + live,
            "{:?}: generated = consumed + live",
            b
        );
        assert!(s.injected >= s.ejected);
    }
}

#[test]
fn drain_conserves_packets_through_forced_moves() {
    let topo = Topology::mesh(4, 4);
    let mut sim = DrainNetworkBuilder::new(topo)
        .epoch(256) // drain aggressively to stress forced moves
        .injection_rate(0.15)
        .seed(4)
        .build()
        .unwrap();
    sim.run(20_000);
    let s = sim.stats();
    assert!(s.drains > 10);
    assert_eq!(
        s.generated + sim.core().ejection_backlog() as u64,
        s.ejected + sim.core().live_packets() as u64
    );
}

#[test]
fn coherence_transactions_complete_and_conserve() {
    let topo = Topology::mesh(3, 3);
    let engine = CoherenceEngine::new(
        &topo,
        CoherenceConfig::default(),
        Box::new(SyntheticMemTrace::uniform(0.1, 0.3, 64, 6).with_quota(100)),
    );
    let mut sim = Sim::new(
        topo.clone(),
        SimConfig {
            inj_queue_capacity: 64,
            escape_sticky: true,
            ..SimConfig::escape_vc_baseline()
        },
        Box::new(EscapeVcRouting::with_dor(&topo)),
        Box::new(drain_repro::netsim::mechanism::NoMechanism),
        Box::new(engine),
    );
    let outcome = sim.run(400_000);
    assert_eq!(outcome, RunOutcome::WorkloadFinished);
    assert_eq!(sim.core().live_packets(), 0, "no stray messages at the end");
}

#[test]
fn stats_quantiles_are_monotone() {
    let topo = Topology::mesh(4, 4);
    let mut sim = baseline_sim(&topo, Baseline::Spin, true, traffic(0.2, 7), 7);
    sim.run(10_000);
    let h = &sim.stats().net_latency;
    assert!(h.quantile(0.5) <= h.quantile(0.9));
    assert!(h.quantile(0.9) <= h.quantile(0.99));
    assert!(h.p99() <= h.max());
    assert!(h.mean() > 0.0);
}
